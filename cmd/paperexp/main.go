// Command paperexp regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index) and prints them in
// the paper's layout.
//
// Usage:
//
//	paperexp                 # full run (several minutes)
//	paperexp -quick          # reduced trace lengths (~2 minutes)
//	paperexp -only fig9,tab4 # a subset
//	paperexp -list           # list experiment IDs and registered predictors
//	paperexp -jobs 8         # worker-pool width (default GOMAXPROCS)
//	paperexp -predictors all # extended Table IV across the predictor arena
//	paperexp -coordinator 127.0.0.1:8080 -memo-dir ./memo  # distributed sweep
//	paperexp -worker http://127.0.0.1:8080                 # join as a worker
//
// -predictors sweeps registered predictors (internal/pred registry) on
// identical materialized traces and prints the extended Table IV with
// storage-normalized footers; "all" sweeps every TLB-side predictor, a
// comma-separated list picks specific competitors (unknown names list the
// registered set). Without -only, -predictors runs just the sweep.
//
// -multicore runs the multi-core/multi-tenant interference sweep (DESIGN.md
// §15): dead-page prediction accuracy, premature-kill rate, LLT MPKI and
// aggregate IPC across a cores × tenants grid with ASID-targeted TLB
// shootdowns. Without -only, -multicore runs just that sweep. Like every
// grid, the printed table is byte-identical whatever -jobs is.
//
// Simulations are sharded across a bounded worker pool (-jobs); every run
// is seeded, results are aggregated in the paper's fixed order, and the
// printed tables are byte-identical whatever the job count.
//
// -trace-dir DIR caches each workload's stream as a compressed DPBF v2
// trace file under DIR (recorded once, reused on later runs with the same
// seed and lengths) and streams it from disk chunk by chunk instead of
// holding the materialized buffer in memory. Output stays byte-identical
// to the in-memory default at any -jobs; see DESIGN.md §16.
//
// Distributed sweeps (see DESIGN.md §17): -coordinator ADDR runs the sweep
// as a coordinator that persists every cell result in the content-addressed
// -memo-dir memo and serves cells over HTTP to -worker processes;
// `paperexp -worker URL` pulls cells from a coordinator until the sweep is
// done. Workers that die mid-cell are detected by lease expiry and their
// cells requeued; a re-run or restarted coordinator over the same -memo-dir
// computes only the delta, reporting the split in a final
// "coordinator status:" line on stderr. -memo-dir alone keeps the sweep
// in-process but persistent. Printed tables are byte-identical across
// single-process, distributed and memo-resumed runs.
//
// Observability (see DESIGN.md §8): -trace-out FILE streams JSONL (or CSV,
// by extension) hook-point events (deadsim's -trace is a replay input),
// -metrics-out FILE writes interval time series plus final counters as
// JSON, -interval N sets the sampling cadence, and
// -cpuprofile/-memprofile capture pprof profiles.
//
// Live monitoring (see DESIGN.md §13): -serve ADDR starts an HTTP server
// for the duration of the run with /metrics (Prometheus text), /status
// (JSON grid snapshot), /events (SSE cell transitions), /healthz and
// /debug/pprof. ":0" picks a free port; the bound address is printed to
// stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/expserve"
	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/pred"
)

// experiment binds an ID to its generator function.
type experiment struct {
	id   string
	name string
	run  func(*exp.Runner) (exp.Series, error)
}

var experiments = []experiment{
	{"fig1", "Figure 1 (dead/DOA LLT entries, sampled)", exp.Figure1},
	{"fig2", "Figure 2 (LLT eviction classification)", exp.Figure2},
	{"fig3", "Figure 3 (dead/DOA LLC blocks, sampled)", exp.Figure3},
	{"fig4", "Figure 4 (LLC eviction classification)", exp.Figure4},
	{"tab3", "Table III (DOA block / DOA page correlation)", exp.Table3},
	{"fig9", "Figure 9 (TLB predictor IPC)", exp.Figure9},
	{"tab4", "Table IV (LLT MPKI reductions)", exp.Table4},
	{"fig10", "Figure 10 (LLC predictor IPC)", exp.Figure10},
	{"tab5", "Table V (LLC MPKI reductions)", exp.Table5},
	{"tab6", "Table VI (dead page predictor accuracy)", exp.Table6},
	{"tab7", "Table VII (dead block predictor accuracy)", exp.Table7},
	{"fig11a", "Figure 11a (LLT size sensitivity)", exp.Figure11a},
	{"fig11b", "Figure 11b (pHIST configuration)", exp.Figure11b},
	{"fig11c", "Figure 11c (shadow table size)", exp.Figure11c},
	{"fig11d", "Figure 11d (PFQ size)", exp.Figure11d},
	{"fig11e", "Figure 11e (LLC size sensitivity)", exp.Figure11e},
	{"fig11f", "Figure 11f (SRRIP replacement)", exp.Figure11f},
	{"exta", "Extension A (distance TLB prefetching vs dpPred)", exp.ExtensionPrefetch},
	{"extb", "Extension B (DIP-managed LLT vs dpPred)", exp.ExtensionDIP},
	{"abla", "Ablation A (dpPred prediction threshold)", exp.AblationThreshold},
	{"ablb", "Ablation B (pHIST counter width)", exp.AblationCounterBits},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperexp:", err)
		os.Exit(1)
	}
}

// printCoordinatorStatus fetches the coordinator's own /status endpoint —
// the same document workers and CI curl — and prints its counters to
// stderr in one greppable line. The distributed-smoke CI job parses it to
// assert that a resumed sweep computed only the delta.
func printCoordinatorStatus(addr string) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + "/status")
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperexp: coordinator status:", err)
		return
	}
	defer resp.Body.Close()
	var st expserve.StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fmt.Fprintln(os.Stderr, "paperexp: coordinator status:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "paperexp: coordinator status: cells=%d memo_hits=%d computed=%d requeues=%d failed=%d\n",
		st.Cells, st.MemoHits, st.Computed, st.Requeues, st.Failed)
}

func run() error {
	var (
		quick      = flag.Bool("quick", false, "use reduced trace lengths")
		only       = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		seed       = flag.Uint64("seed", 1, "workload and allocator seed")
		jobs       = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulations (1 = sequential; output is identical either way)")
		verbose    = flag.Bool("v", false, "print per-simulation progress with elapsed time")
		traceDir   = flag.String("trace-dir", "", "cache workload traces as compressed DPBF v2 files in this directory (created if missing) and stream them from disk instead of holding materialized buffers in memory")
		traceOut   = flag.String("trace-out", "", "write hook-point event trace to file (JSONL; a .csv extension selects CSV)")
		metricsOut = flag.String("metrics-out", "", "write interval time series and final metrics JSON to file")
		serveAddr  = flag.String("serve", "", "serve live monitoring HTTP endpoints on this address while the run lasts (\":0\" picks a free port)")
		interval   = flag.Uint64("interval", 50_000, "accesses between interval samples (used with -metrics-out)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to file")
		predictors = flag.String("predictors", "", "extended Table IV sweep: comma-separated registered predictor names, or \"all\" for every TLB-side predictor")
		multicore  = flag.Bool("multicore", false, "multi-core/multi-tenant interference sweep: dead-page prediction quality vs core count × tenant count")
		coordAddr  = flag.String("coordinator", "", "run the sweep as a coordinator serving cells to -worker processes on this address (\":0\" picks a free port; requires -memo-dir)")
		workerURL  = flag.String("worker", "", "run as a sweep worker pulling cells from this coordinator URL (e.g. http://127.0.0.1:8080)")
		memoDir    = flag.String("memo-dir", "", "persist per-cell results in this directory (created if missing); a re-run with the same memo computes only the delta")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.id, e.name)
		}
		fmt.Println("storage  Section VI-D (storage overheads)")
		fmt.Println("\nflag-selected sweeps: -predictors (extended Table IV), -multicore (interference grid)")
		fmt.Printf("\nregistered predictors (-predictors): %s\n", strings.Join(pred.Names(), ", "))
		return nil
	}

	// Worker mode: no experiments of its own — pull cells from the
	// coordinator until it reports the sweep done (DESIGN.md §17).
	if *workerURL != "" {
		if *coordAddr != "" {
			return fmt.Errorf("-worker and -coordinator are mutually exclusive")
		}
		if *memoDir != "" {
			return fmt.Errorf("-memo-dir belongs on the coordinator; workers hold no memo")
		}
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		if *traceDir != "" {
			if err := os.MkdirAll(*traceDir, 0o755); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "paperexp: worker pulling cells from %s\n", *workerURL)
		return expserve.RunWorker(ctx, expserve.WorkerConfig{
			Coordinator: strings.TrimRight(*workerURL, "/"),
			Jobs:        *jobs,
			TraceDir:    *traceDir,
			Verbose:     *verbose,
		})
	}

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "paperexp:", err)
			}
		}()
	}

	params := exp.DefaultParams()
	if *quick {
		params = exp.QuickParams()
	}
	params.Seed = *seed
	r := exp.NewRunner(params)
	r.SetJobs(*jobs)
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
		r.SetTraceDir(*traceDir)
	}
	if *verbose {
		r.ProgressStart = func(w, s string) {
			fmt.Fprintf(os.Stderr, "  simulating %s under %s\n", w, s)
		}
		r.ProgressDone = func(w, s string, elapsed time.Duration, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "  FAILED     %s under %s after %v: %v\n", w, s, elapsed.Round(time.Millisecond), err)
				return
			}
			fmt.Fprintf(os.Stderr, "  finished   %s under %s in %v\n", w, s, elapsed.Round(time.Millisecond))
		}
	}

	// SIGINT/SIGTERM cancel the experiment grid: running simulations stop
	// at their next stride check, queued cells never start, and the error
	// path below flushes whatever traces and metrics were already
	// collected before exiting nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	r.SetContext(ctx)

	// Distributed sweeps (DESIGN.md §17): -coordinator serves cells to
	// -worker processes and persists every result in the -memo-dir memo,
	// so a re-run (or a restarted coordinator) computes only the delta.
	// -memo-dir alone keeps the sweep in-process but still persistent.
	if *coordAddr != "" {
		if *memoDir == "" {
			return fmt.Errorf("-coordinator requires -memo-dir (the durable cell memo)")
		}
		memo, err := expserve.OpenDiskMemo(*memoDir)
		if err != nil {
			return err
		}
		coord := expserve.NewCoordinator(memo, params)
		addr, err := coord.Start(*coordAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "paperexp: coordinating on http://%s\n", addr)
		r.Executor = coord.Execute
		defer func() {
			coord.Finish()
			printCoordinatorStatus(addr)
			// Give polling workers one round-trip to observe the done
			// signal and exit cleanly before the listener goes away.
			time.Sleep(1200 * time.Millisecond)
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := coord.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "paperexp: coordinator shutdown:", err)
			}
		}()
	} else if *memoDir != "" {
		memo, err := expserve.OpenDiskMemo(*memoDir)
		if err != nil {
			return err
		}
		r.Memo = memo
	}

	observer, finishObs, err := obs.FromFlags(*traceOut, *metricsOut, *interval)
	if err != nil {
		return err
	}

	if *serveAddr != "" {
		// Live monitoring needs a metrics registry even when -metrics-out
		// is unset; the registry is passive, so results are unchanged.
		if observer == nil {
			observer = &obs.Observer{}
		}
		if observer.Metrics == nil {
			observer.Metrics = obs.NewRegistry()
		}
		board := serve.NewBoard()
		r.Status = board
		server := serve.NewServer(observer.Metrics, board)
		addr, err := server.Start(*serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "paperexp: monitoring on http://%s\n", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := server.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "paperexp: monitor shutdown:", err)
				return
			}
			fmt.Fprintln(os.Stderr, "paperexp: monitor stopped")
		}()
	}
	r.Observer = observer

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[strings.ToLower(id)] = true
		}
	}
	// With -predictors or -multicore and no -only, run just those sweeps.
	want := func(id string) bool {
		if len(selected) == 0 {
			return *predictors == "" && !*multicore
		}
		return selected[id]
	}

	// failPartial flushes the observability sinks before surfacing an
	// error, so an interrupted or failed grid still leaves analyzable
	// partial traces and metrics behind.
	failPartial := func(err error) error {
		if ferr := finishObs(); ferr != nil {
			fmt.Fprintln(os.Stderr, "paperexp: flushing partial results:", ferr)
		} else {
			fmt.Fprintln(os.Stderr, "paperexp: partial results flushed")
		}
		return err
	}

	start := time.Now()
	for _, e := range experiments {
		if !want(e.id) {
			continue
		}
		s, err := e.run(r)
		if err != nil {
			return failPartial(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Println(s.Format())
	}
	if want("storage") {
		rep, err := exp.StorageOverheads()
		if err != nil {
			return failPartial(err)
		}
		fmt.Println(rep.Format())
	}
	if *predictors != "" {
		var names []string
		if !strings.EqualFold(*predictors, "all") {
			for _, n := range strings.Split(*predictors, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
		}
		s, err := exp.Table4Extended(r, names)
		if err != nil {
			return failPartial(fmt.Errorf("predictors: %w", err))
		}
		fmt.Println(s.Format())
	}
	if *multicore {
		s, err := exp.MultiCoreSweep(r)
		if err != nil {
			return failPartial(fmt.Errorf("multicore: %w", err))
		}
		fmt.Println(s.Format())
	}
	if err := finishObs(); err != nil {
		return err
	}
	if observer != nil && observer.Tracer != nil {
		fmt.Fprintf(os.Stderr, "paperexp: traced %d events to %s\n", observer.Tracer.Count(), *traceOut)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "paperexp: done in %v\n", time.Since(start).Round(time.Second))
	return nil
}
