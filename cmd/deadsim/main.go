// Command deadsim runs one workload on the simulated machine with a chosen
// predictor configuration and prints the resulting statistics.
//
// Usage:
//
//	deadsim -workload cactusADM -tlb dpPred -llc cbPred -n 1000000
//
// Predictor choices resolve through the arena registry (internal/pred):
// any registered name works case-insensitively (-tlb SDBP-TLB, -tlb
// "duel(dpPred,SDBP)", -llc SHiP-LLC, ...), plus "none" and the
// historical short aliases — -tlb {dpPred,SHiP,AIP,oracle}, -llc
// {cbPred,SHiP,AIP}. Unknown names list the registered set. cbPred (and
// any predictor registered with NeedsDOACoupling) requires a bypassing
// TLB-side driver such as dpPred (§V-B).
//
// Multi-core, multi-tenant runs (DESIGN.md §15):
//
//	deadsim -cores 4 -tenants 4 -quantum 10000 -shootdown asid -unmap-every 50000 -tlb dpPred -llc cbPred -accuracy
//
// -cores/-tenants (or a nonzero -unmap-every) select the multi-core
// machine: per-core private L1 TLBs and L1D/L2 over a shared LLT and LLC,
// one address space per tenant (ASID-tagged), round-robin scheduling with
// -quantum accesses per slice, and a page unmap plus TLB shootdown
// (-shootdown asid|full) per tenant every -unmap-every accesses. The
// defaults keep the single-machine path and its output byte-identical.
// -serve and -metrics-out work in this mode; -trace, -trace-out,
// -characterize, the oracle and checkpoint flags are single-machine only.
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	// core registers dpPred, cbPred and the tournament duels in the
	// predictor registry at init.
	_ "repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/pred"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deadsim:", err)
		os.Exit(1)
	}
}

// tlbAliases and llcAliases keep the historical short flag values working
// on top of the registry's canonical names.
var (
	tlbAliases = map[string]string{"dppred": "dpPred", "ship": "SHiP-TLB", "aip": "AIP-TLB"}
	llcAliases = map[string]string{"cbpred": "cbPred", "ship": "SHiP-LLC", "aip": "AIP-LLC"}
)

// resolveAlias maps a CLI value to its registry name; unknown values pass
// through so pred.Lookup can resolve exact names or report the registered
// set.
func resolveAlias(name string, aliases map[string]string) string {
	if canonical, ok := aliases[strings.ToLower(name)]; ok {
		return canonical
	}
	return name
}

func run() error {
	var (
		workload  = flag.String("workload", "cactusADM", "Table II workload name (or 'list')")
		traceFile = flag.String("trace", "", "replay a recorded trace file instead of a synthetic workload (looped; DPTR streams and DPBF v1/v2 dumps by magic, see cmd/tracedump)")
		tlbPred   = flag.String("tlb", "none", "LLT predictor: none, oracle, or a registered name/alias (dpPred, SHiP, AIP, SDBP-TLB, Leeway-TLB, ...)")
		llcPred   = flag.String("llc", "none", "LLC predictor: none or a registered name/alias (cbPred, SHiP, AIP, SDBP-LLC, ...)")
		warmup    = flag.Uint64("warmup", 300_000, "warmup accesses before measurement")
		measure   = flag.Uint64("n", 1_000_000, "measured accesses")
		seed      = flag.Uint64("seed", 1, "workload and allocator seed")
		lltSize   = flag.Int("llt", 1024, "LLT entries (multiple of 8)")
		llcKB     = flag.Int("llckb", 2048, "LLC size in KB")
		accuracy  = flag.Bool("accuracy", false, "grade predictions against mirror ground truth")
		deadScan  = flag.Bool("characterize", false, "sample dead/DOA entry fractions (§IV)")

		cores      = flag.Int("cores", 1, "simulated cores sharing the LLT and LLC (>1 selects the multi-core machine)")
		tenants    = flag.Int("tenants", 1, "tenant address spaces round-robined across cores (>1 selects the multi-core machine)")
		quantum    = flag.Uint64("quantum", 10_000, "context-switch quantum in accesses for cores running several tenants (0 = never switch)")
		shootdown  = flag.String("shootdown", "asid", "TLB shootdown policy on unmap: asid (flush the unmapping tenant's entries) or full (flush everything)")
		unmapEvery = flag.Uint64("unmap-every", 0, "inject one page unmap plus shootdown per tenant every N accesses (0 = never; >0 selects the multi-core machine)")

		ckptOut = flag.String("checkpoint-out", "", "after warmup, write the machine's warm state to file, then measure as usual")
		ckptIn  = flag.String("checkpoint-in", "", "restore warm state from file instead of running warmup")

		traceOut   = flag.String("trace-out", "", "write hook-point event trace to file (JSONL; a .csv extension selects CSV)")
		metricsOut = flag.String("metrics-out", "", "write interval time series and final metrics JSON to file")
		serveAddr  = flag.String("serve", "", "serve live monitoring HTTP endpoints on this address while the run lasts (\":0\" picks a free port)")
		interval   = flag.Uint64("interval", 50_000, "accesses between interval samples (used with -metrics-out)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to file")
	)
	flag.Parse()

	if *workload == "list" {
		for _, w := range trace.Workloads() {
			fmt.Printf("%-10s %-10s %3d MB  %s\n", w.Name, w.Suite, w.FootprintMB, w.Description)
		}
		return nil
	}
	var w trace.Workload
	if *traceFile != "" {
		// Open and validate the trace up front so a missing file or bad
		// header fails the run through the normal error path. All the
		// generators built here implement trace.ErrGenerator, so a
		// truncated or mid-file-corrupt trace latches its error during
		// replay and every drain path (Materialize, System.Run) surfaces it
		// instead of silently repeating the last record.
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := openTraceGenerator(f)
		if err != nil {
			return fmt.Errorf("%s: %w", *traceFile, err)
		}
		w = trace.Workload{
			Name:  "trace:" + *traceFile,
			Suite: "recorded",
			New:   func(uint64) trace.Generator { return g },
		}
	} else {
		var err error
		w, err = trace.ByName(*workload)
		if err != nil {
			return err
		}
	}

	cfg := sim.DefaultConfig()
	cfg.LLT.Entries = *lltSize
	cfg.LLC.SizeKB = *llcKB
	cfg.Seed = *seed

	setup := exp.Setup{Name: "cli"}
	var tlbReg *pred.Registration
	switch strings.ToLower(*tlbPred) {
	case "none":
	case "oracle":
		setup.Oracle = true
	default:
		reg, err := pred.Lookup(resolveAlias(*tlbPred, tlbAliases))
		if err != nil {
			return err
		}
		if reg.Kind != pred.KindTLB {
			return fmt.Errorf("%s is an %v predictor; use -llc", reg.Name, reg.Kind)
		}
		setup.TLB = func(s *sim.System) (pred.TLBPredictor, error) {
			return reg.NewTLB(s.LLT().Inner())
		}
		tlbReg = &reg
	}
	var llcReg *pred.Registration
	if strings.ToLower(*llcPred) != "none" {
		reg, err := pred.Lookup(resolveAlias(*llcPred, llcAliases))
		if err != nil {
			return err
		}
		if reg.Kind != pred.KindLLC {
			return fmt.Errorf("%s is a %v predictor; use -tlb", reg.Name, reg.Kind)
		}
		if reg.Caps.NeedsDOACoupling && (tlbReg == nil || !tlbReg.Caps.Bypasses) {
			return fmt.Errorf("%s requires a bypassing DOA-page driver on the TLB side (-tlb dpPred, §V-B)", reg.Name)
		}
		setup.LLC = func(s *sim.System) (pred.LLCPredictor, error) {
			return reg.NewLLC(s.LLC())
		}
		llcReg = &reg
	}
	setup.Config = func() sim.Config { return cfg }
	setup.Instrument = exp.Instrumentation{Accuracy: *accuracy, Characterize: *deadScan}

	// -cores/-tenants/-unmap-every select the multi-core machine (DESIGN.md
	// §15). The single-machine path below is untouched — and byte-identical
	// — at the 1-core, 1-tenant, no-unmap defaults.
	multicore := *cores > 1 || *tenants > 1 || *unmapEvery > 0
	var mcfg sim.MultiConfig
	if multicore {
		policy, err := sim.ParseShootdown(*shootdown)
		if err != nil {
			return err
		}
		mcfg = sim.MultiConfig{Machine: cfg, Cores: *cores, Tenants: *tenants,
			Quantum: *quantum, Shootdown: policy, UnmapEvery: *unmapEvery}
		switch {
		case *traceFile != "":
			return fmt.Errorf("-trace replays one recorded stream; multi-core runs need per-tenant synthetic workloads")
		case setup.Oracle:
			return fmt.Errorf("the oracle's two-pass protocol is single-machine only")
		case *deadScan:
			return fmt.Errorf("-characterize is single-machine only")
		case *ckptOut != "" || *ckptIn != "":
			return fmt.Errorf("multi-core checkpoints are API-only (sim.MultiSystem.WriteCheckpoint); drop -checkpoint-out/-checkpoint-in")
		case *traceOut != "":
			return fmt.Errorf("-trace-out hook events are single-machine only; use -metrics-out or -serve for multi-core observability")
		}
	}

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "deadsim:", err)
			}
		}()
	}
	observer, finishObs, err := obs.FromFlags(*traceOut, *metricsOut, *interval)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM cancel the simulation at its next stride check; the
	// error path below still flushes any partial traces and metrics.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	r := exp.NewRunner(exp.Params{Warmup: *warmup, Measure: *measure, Seed: *seed, SampleEvery: 20_000})
	r.SetContext(ctx)
	var board *serve.Board
	if *serveAddr != "" {
		// Single-cell board: the one workload/setup pair still gets
		// queued/start/done transitions, and /metrics serves the run's
		// registry (created here when -metrics-out didn't already).
		if observer == nil {
			observer = &obs.Observer{}
		}
		if observer.Metrics == nil {
			observer.Metrics = obs.NewRegistry()
		}
		board = serve.NewBoard()
		r.Status = board
		server := serve.NewServer(observer.Metrics, board)
		addr, err := server.Start(*serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "deadsim: monitoring on http://%s\n", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := server.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "deadsim: monitor shutdown:", err)
				return
			}
			fmt.Fprintln(os.Stderr, "deadsim: monitor stopped")
		}()
	}
	r.Observer = observer
	var res sim.Result
	var mres sim.MultiResult
	switch {
	case multicore:
		var metrics *obs.Registry
		if observer != nil {
			metrics = observer.Metrics
		}
		mres, err = runMulticore(ctx, w, mcfg, tlbReg, llcReg, *accuracy, metrics, board, *seed, *warmup, *measure)
	case *ckptOut != "" || *ckptIn != "":
		if observer != nil {
			return fmt.Errorf("checkpoints cannot be combined with -trace-out/-metrics-out/-serve (observers span the whole run, including warmup)")
		}
		if setup.Oracle {
			return fmt.Errorf("the oracle's two-pass protocol cannot be checkpointed")
		}
		res, err = runWithCheckpoint(ctx, r, w, setup, *ckptOut, *ckptIn, *seed, *warmup, *measure)
	default:
		res, err = r.Run(w, setup)
	}
	if err != nil {
		if ferr := finishObs(); ferr != nil {
			fmt.Fprintln(os.Stderr, "deadsim: flushing partial results:", ferr)
		} else if observer != nil {
			fmt.Fprintln(os.Stderr, "deadsim: partial results flushed")
		}
		return err
	}
	if err := finishObs(); err != nil {
		return err
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	if observer != nil && observer.Tracer != nil {
		fmt.Fprintf(os.Stderr, "deadsim: traced %d events to %s\n", observer.Tracer.Count(), *traceOut)
	}

	if multicore {
		printMulti(w, mcfg, *tlbPred, *llcPred, *accuracy, mres)
		return nil
	}

	fmt.Printf("workload      %s (%s, %d MB)\n", w.Name, w.Suite, w.FootprintMB)
	fmt.Printf("predictors    tlb=%s llc=%s\n", *tlbPred, *llcPred)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("cycles        %.0f\n", res.Cycles)
	fmt.Printf("IPC           %.4f\n", res.IPC)
	fmt.Printf("LLT           lookups %d, misses %d, walks %d, bypasses %d, shadow fills %d\n",
		res.LLTLookups, res.LLTMisses, res.Walks, res.LLTBypasses, res.ShadowFills)
	fmt.Printf("LLT MPKI      %.3f\n", res.LLTMPKI)
	fmt.Printf("LLC           lookups %d, misses %d, bypasses %d\n",
		res.LLCLookups, res.LLCMisses, res.LLCBypasses)
	fmt.Printf("LLC MPKI      %.3f\n", res.LLCMPKI)
	fmt.Printf("page walker   %d PTE fetches, %d walk cycles, %d queue cycles\n",
		res.PTAccesses, res.WalkCycles, res.WalkQueueCycles)
	hitRate := func(lookups, misses uint64) float64 {
		if lookups == 0 {
			return 0
		}
		return 100 * float64(lookups-misses) / float64(lookups)
	}
	fmt.Printf("hierarchy     L1D %.1f%%, L2 %.1f%%, LLC %.1f%% hit rate\n",
		hitRate(res.L1DLookups, res.L1DMisses),
		hitRate(res.L2Lookups, res.L2Misses),
		hitRate(res.LLCLookups, res.LLCMisses))
	fmt.Printf("TLBs          L1D-TLB %.1f%%, L1I-TLB %.1f%%, LLT %.1f%% hit rate\n",
		hitRate(res.DTLBLookups, res.DTLBMisses),
		hitRate(res.ITLBLookups, res.ITLBMisses),
		hitRate(res.LLTLookups, res.LLTMisses))
	fmt.Printf("PWC hits      PDE %d, PDPTE %d, PML4E %d; full walks %d\n",
		res.PWCHits[0], res.PWCHits[1], res.PWCHits[2], res.FullWalks)
	if *accuracy {
		fmt.Printf("LLT predictor accuracy %.1f%%, coverage %.1f%% (true DOAs %d)\n",
			100*res.LLTAccuracy.Accuracy(), 100*res.LLTAccuracy.Coverage(), res.LLTAccuracy.TrueDOA)
		fmt.Printf("LLC predictor accuracy %.1f%%, coverage %.1f%% (true DOAs %d)\n",
			100*res.LLCAccuracy.Accuracy(), 100*res.LLCAccuracy.Coverage(), res.LLCAccuracy.TrueDOA)
	}
	if *deadScan {
		fmt.Printf("LLT dead      %.1f%% of sampled entries dead, %.1f%% DOA; evictions %.1f%% DOA\n",
			100*res.LLTDead.SampledDeadFrac(), 100*res.LLTDead.SampledDOAFrac(), 100*res.LLTDead.DOAFrac())
		fmt.Printf("LLC dead      %.1f%% of sampled blocks dead, %.1f%% DOA; evictions %.1f%% DOA\n",
			100*res.LLCDead.SampledDeadFrac(), 100*res.LLCDead.SampledDOAFrac(), 100*res.LLCDead.DOAFrac())
		fmt.Printf("correlation   %.1f%% of LLC DOA blocks fall on DOA pages\n",
			res.Correlation.Percent())
	}
	return nil
}

// openTraceGenerator sniffs the trace file's magic (and, for DPBF, its
// version) and builds the matching looping generator: DPTR record streams
// replay through the Replayer, DPBF v1 dumps materialize into a Buffer,
// and DPBF v2 dumps stream chunk by chunk through a ChunkedTrace without
// ever materializing. All three wrap at end of stream, and the buffer
// cursors serve the batched simulation path (trace.ChunkReader).
func openTraceGenerator(f *os.File) (trace.Generator, error) {
	var pre [6]byte
	if _, err := f.ReadAt(pre[:], 0); err != nil {
		return nil, fmt.Errorf("sniffing trace magic: %w", err)
	}
	if string(pre[:4]) != "DPBF" {
		// DPTR — or garbage, which the replayer rejects with the message
		// naming both accepted magics.
		rp, err := trace.NewReplayer(f, true)
		if err != nil {
			return nil, err
		}
		return rp, nil
	}
	if binary.LittleEndian.Uint16(pre[4:]) == 2 {
		info, err := f.Stat()
		if err != nil {
			return nil, err
		}
		ct, err := trace.OpenChunked(f, info.Size())
		if err != nil {
			return nil, err
		}
		return ct.NewReader(), nil
	}
	b, err := trace.ReadBuffer(f)
	if err != nil {
		return nil, err
	}
	return b.Reader(), nil
}

// runMulticore builds the multi-core machine, feeds every tenant its own
// generator (seeded seed+tenantID), and measures with optional accuracy and
// confusion grading on the shared LLT/LLC. The live-monitoring board gets a
// single cell named after the topology.
func runMulticore(ctx context.Context, w trace.Workload, mc sim.MultiConfig, tlbReg, llcReg *pred.Registration,
	accuracy bool, metrics *obs.Registry, board *serve.Board, seed, warmup, measure uint64) (sim.MultiResult, error) {
	m, err := sim.NewMulti(mc)
	if err != nil {
		return sim.MultiResult{}, err
	}
	if tlbReg != nil {
		p, err := tlbReg.NewTLB(m.LLT().Inner())
		if err != nil {
			return sim.MultiResult{}, err
		}
		m.SetTLBPredictor(p)
	}
	if llcReg != nil {
		p, err := llcReg.NewLLC(m.LLC())
		if err != nil {
			return sim.MultiResult{}, err
		}
		m.SetLLCPredictor(p)
	}
	m.AttachMetrics(metrics)

	cell := fmt.Sprintf("%dc×%dt", mc.Cores, mc.Tenants)
	start := time.Now()
	if board != nil {
		board.CellQueued(w.Name, cell)
		board.CellStart(w.Name, cell)
	}
	run := func() error {
		gens := make([]trace.Generator, mc.Tenants)
		for t := range gens {
			gens[t] = w.New(seed + uint64(t))
		}
		if err := m.RunContext(ctx, gens, warmup); err != nil {
			return err
		}
		if accuracy {
			if err := m.EnableAccuracyTracking(); err != nil {
				return err
			}
			if err := m.EnableConfusionTracking(); err != nil {
				return err
			}
		}
		m.StartMeasurement()
		if err := m.RunContext(ctx, gens, measure); err != nil {
			return err
		}
		m.Finish()
		return nil
	}
	err = run()
	if board != nil {
		board.CellDone(w.Name, cell, time.Since(start), err)
	}
	if err != nil {
		return sim.MultiResult{}, err
	}
	return m.Result(), nil
}

// printMulti renders the multi-core run's statistics. The shared-structure
// counters (LLT, LLC) repeat identically in every PerCore entry, so they are
// read from core 0; walks, instructions and the scheduling counters are
// machine totals.
func printMulti(w trace.Workload, mc sim.MultiConfig, tlbPred, llcPred string, accuracy bool, res sim.MultiResult) {
	fmt.Printf("workload      %s (%s, %d MB) × %d tenants\n", w.Name, w.Suite, w.FootprintMB, mc.Tenants)
	fmt.Printf("topology      %d cores, quantum %d, shootdown %s, unmap every %d\n",
		mc.Cores, mc.Quantum, mc.Shootdown, mc.UnmapEvery)
	fmt.Printf("predictors    tlb=%s llc=%s\n", tlbPred, llcPred)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("cycles        %.0f (slowest core)\n", res.Cycles)
	fmt.Printf("IPC           %.4f aggregate;", res.IPC)
	for i, pc := range res.PerCore {
		fmt.Printf(" core%d %.4f", i, pc.IPC)
	}
	fmt.Println()
	fmt.Printf("scheduling    %d context switches, %d shootdowns (%d entries flushed), %d unmaps\n",
		res.Switches, res.Shootdowns, res.ShootdownFlushed, res.Unmaps)
	shared := res.PerCore[0]
	fmt.Printf("shared LLT    lookups %d, misses %d, walks %d, bypasses %d\n",
		shared.LLTLookups, shared.LLTMisses, res.Walks, shared.LLTBypasses)
	fmt.Printf("LLT MPKI      %.3f\n", res.LLTMPKI)
	fmt.Printf("shared LLC    lookups %d, misses %d, bypasses %d\n",
		shared.LLCLookups, shared.LLCMisses, shared.LLCBypasses)
	fmt.Printf("LLC MPKI      %.3f\n", res.LLCMPKI)
	if accuracy {
		fmt.Printf("LLT predictor accuracy %.1f%%, coverage %.1f%%, premature kills %.1f%% (true DOAs %d)\n",
			100*res.LLTAccuracy.Accuracy(), 100*res.LLTAccuracy.Coverage(),
			100*res.LLTConfusion.PrematureRate(), res.LLTAccuracy.TrueDOA)
		fmt.Printf("LLC predictor accuracy %.1f%%, coverage %.1f%%, premature kills %.1f%% (true DOAs %d)\n",
			100*res.LLCAccuracy.Accuracy(), 100*res.LLCAccuracy.Coverage(),
			100*res.LLCConfusion.PrematureRate(), res.LLCAccuracy.TrueDOA)
	}
}

// ffStride is the checkpoint fast-forward loop's cancellation-check
// stride, matching the simulators' ctxCheckStride. The mask-form check in
// the loop requires a power of two, asserted at compile time.
const ffStride = 4096

const _ uint = -(ffStride & (ffStride - 1))

// runWithCheckpoint drives the simulation directly (bypassing the runner's
// memo) so the warm state can be written to or restored from a checkpoint
// file. A restored run fast-forwards its generator by the checkpoint's
// consumed-access count and is bit-identical to the cold run that produced
// the checkpoint.
func runWithCheckpoint(ctx context.Context, r *exp.Runner, w trace.Workload, setup exp.Setup, outPath, inPath string, seed, warmup, measure uint64) (sim.Result, error) {
	s, err := r.BuildSystem(setup)
	if err != nil {
		return sim.Result{}, err
	}
	g := w.New(seed)
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return sim.Result{}, err
		}
		meta, err := s.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return sim.Result{}, fmt.Errorf("restoring %s: %w", inPath, err)
		}
		if meta.Workload != w.Name {
			return sim.Result{}, fmt.Errorf("checkpoint %s was taken on workload %q, not %q", inPath, meta.Workload, w.Name)
		}
		// Splice the generator onto the stream position the checkpointed
		// run had reached. The fast-forward is pure generator work, so it
		// honors cancellation and a replayed trace's latched errors just
		// like a simulated prefix would.
		for i := uint64(0); i < meta.Accesses; i++ {
			if i&(ffStride-1) == 0 {
				select {
				case <-ctx.Done():
					return sim.Result{}, fmt.Errorf("fast-forwarding %s: %w", inPath, ctx.Err())
				default:
				}
			}
			g.Next()
		}
		if err := trace.GeneratorErr(g); err != nil {
			return sim.Result{}, fmt.Errorf("fast-forwarding %s: %w", inPath, err)
		}
		fmt.Fprintf(os.Stderr, "deadsim: restored %s (%d warm accesses)\n", inPath, meta.Accesses)
	} else if err := s.RunContext(ctx, g, warmup); err != nil {
		return sim.Result{}, err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return sim.Result{}, err
		}
		werr := s.WriteCheckpoint(f, w.Name)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return sim.Result{}, fmt.Errorf("writing %s: %w", outPath, werr)
		}
		fmt.Fprintf(os.Stderr, "deadsim: wrote checkpoint %s\n", outPath)
	}
	if setup.Instrument.Accuracy {
		if err := s.EnableAccuracyTracking(); err != nil {
			return sim.Result{}, err
		}
	}
	if setup.Instrument.Characterize {
		s.EnableCharacterization(20_000)
	}
	s.StartMeasurement()
	if err := s.RunContext(ctx, g, measure); err != nil {
		return sim.Result{}, err
	}
	s.Finish()
	return s.Result(), nil
}
