// Command tracedump records synthetic workload traces to the repository's
// binary trace format and inspects existing trace files. Recorded traces
// can be replayed through the simulator (deadpred.Replayer / the -replay
// flag of deadsim-style tools) or exported as CSV for external analysis.
//
// Usage:
//
//	tracedump -workload cc -n 1000000 -o cc.dptr     # record
//	tracedump -dump cc.dptr -n 20                    # peek at records
//	tracedump -dump cc.dptr -csv > cc.csv            # export CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "", "Table II workload to record")
		n        = flag.Uint64("n", 1_000_000, "records to record/dump")
		out      = flag.String("o", "", "output trace file (record mode)")
		dump     = flag.String("dump", "", "trace file to inspect")
		csv      = flag.Bool("csv", false, "dump as CSV instead of a summary")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	switch {
	case *workload != "" && *out != "":
		return record(*workload, *out, *n, *seed)
	case *dump != "":
		return inspect(*dump, *n, *csv)
	default:
		flag.Usage()
		return fmt.Errorf("need either -workload with -o, or -dump")
	}
}

func record(name, path string, n, seed uint64) error {
	w, err := trace.ByName(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(f, w.New(seed), n); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of %s to %s (%d bytes)\n", n, name, path, info.Size())
	return nil
}

func inspect(path string, n uint64, csv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.NewReplayer(f, false)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("pc,vaddr,gap,write,dependent")
	} else {
		fmt.Printf("trace %q\n", rp.Name())
	}
	var (
		writes, deps uint64
		pages        = map[uint64]bool{}
		gaps         uint64
	)
	for i := uint64(0); i < n; i++ {
		a := rp.Next()
		if rp.Err != nil {
			return rp.Err
		}
		if csv {
			fmt.Printf("%#x,%#x,%d,%t,%t\n", a.PC, uint64(a.Addr), a.Gap, a.Write, a.Dependent)
			continue
		}
		if i < 10 {
			fmt.Printf("  %3d: pc=%#x addr=%#x gap=%d write=%t dep=%t\n",
				i, a.PC, uint64(a.Addr), a.Gap, a.Write, a.Dependent)
		}
		if a.Write {
			writes++
		}
		if a.Dependent {
			deps++
		}
		pages[uint64(a.Addr.Page())] = true
		gaps += uint64(a.Gap)
	}
	if !csv {
		fmt.Printf("summary over %d records: %d distinct pages, %.1f%% writes, %.1f%% dependent, mean gap %.2f\n",
			n, len(pages), 100*float64(writes)/float64(n), 100*float64(deps)/float64(n),
			float64(gaps)/float64(n))
	}
	return nil
}
