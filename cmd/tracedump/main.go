// Command tracedump records synthetic workload traces to the repository's
// binary trace formats, converts between them, and inspects existing trace
// files. Recorded traces can be replayed through the simulator (deadsim
// -trace) or exported as CSV for external analysis.
//
// Usage:
//
//	tracedump -workload cc -n 1000000 -o cc.dptr     # record DPTR stream
//	tracedump -workload cc -n 1000000 -o cc.dpbf     # record DPBF v2 dump
//	tracedump -convert cc.dptr -o cc.dpbf            # re-encode (v1 -> v2, ...)
//	tracedump -dump cc.dptr -n 20                    # peek at records
//	tracedump -dump cc.dptr -csv > cc.csv            # export CSV
//	tracedump -summary cc.dpbf                       # whole-file statistics
//
// A .dpbf output selects the struct-of-arrays buffer dump, always written
// in the compressed chunk-indexed v2 layout. Writing the legacy raw v1
// layout was removed after its one-release deprecation window; -v1 now
// fails with a pointer at -convert. Any other output extension selects the
// DPTR record stream.
//
// -convert reads a trace in any format (DPTR, DPBF v1, DPBF v2 — by magic)
// and re-encodes it to -o under the same extension rules, so upgrading a
// v1 library is `tracedump -convert old.dpbf -o new.dpbf`. Reading v1
// files is permanent; only producing new ones is gone.
//
// -summary accepts every format and reports per-PC-stream access counts,
// the read/write ratio and the unique-VPN footprint over the entire file.
// For DPBF v2 it first reports the chunk index — per-chunk compressed and
// raw columnar sizes and the overall compression ratio — and rejects files
// whose chunk index disagrees with the footer (trace.ErrChunkIndexMismatch).
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "", "Table II workload to record")
		n        = flag.Uint64("n", 1_000_000, "records to record/dump")
		out      = flag.String("o", "", "output trace file (record/convert mode)")
		convert  = flag.String("convert", "", "trace file (any format) to re-encode to -o")
		v1       = flag.Bool("v1", false, "removed: DPBF v1 can no longer be written (v1 files still read; see -convert)")
		dump     = flag.String("dump", "", "trace file to inspect")
		csv      = flag.Bool("csv", false, "dump as CSV instead of a summary")
		summary  = flag.String("summary", "", "trace file (DPTR or DPBF v1/v2) to summarize whole-file")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	if *v1 {
		// The deprecation window (one release behind -v1) is over: v1 is a
		// read-only format now. Reading and converting v1 files is
		// unaffected and stays supported.
		return fmt.Errorf("-v1 was removed: tracedump no longer writes the legacy DPBF v1 layout; " +
			"existing v1 files still read everywhere — re-encode one with `tracedump -convert old.dpbf -o new.dpbf`")
	}

	// SIGINT/SIGTERM cancel a long recording; the partially written file
	// stays on disk (its header names it) and the command exits nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	switch {
	case *workload != "" && *out != "":
		return record(ctx, *workload, *out, *n, *seed)
	case *convert != "" && *out != "":
		return reencode(*convert, *out)
	case *summary != "":
		return summarize(*summary)
	case *dump != "":
		return inspect(*dump, *n, *csv)
	default:
		flag.Usage()
		return fmt.Errorf("need either -workload with -o, -convert with -o, -dump, or -summary")
	}
}

func record(ctx context.Context, name, path string, n, seed uint64) error {
	w, err := trace.ByName(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".dpbf") {
		// Compressed chunk-indexed buffer dump, streamed chunk by chunk —
		// memory stays bounded whatever -n is.
		err = trace.RecordV2Context(ctx, f, w.New(seed), n)
	} else {
		err = trace.RecordContext(ctx, f, w.New(seed), n)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of %s to %s (%d bytes)\n", n, name, path, info.Size())
	return nil
}

// reencode reads a whole trace in any format and rewrites it to outPath:
// .dpbf selects the DPBF v2 buffer dump, anything else the DPTR record
// stream. The access sequence is preserved exactly, so a converted trace
// replays bit-identically to its source.
func reencode(inPath, outPath string) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	b, err := trace.ReadTrace(in)
	if err != nil {
		return fmt.Errorf("%s: %w", inPath, err)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(outPath, ".dpbf") {
		_, err = b.WriteToV2(f)
	} else {
		err = trace.Record(f, b.Reader(), b.Len())
	}
	if err != nil {
		return fmt.Errorf("%s: %w", outPath, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	fmt.Printf("converted %d accesses of %q from %s to %s (%d bytes)\n",
		b.Len(), b.Name(), inPath, outPath, info.Size())
	return nil
}

func inspect(path string, n uint64, csv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.NewReplayer(f, false)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("pc,vaddr,gap,write,dependent")
	} else {
		fmt.Printf("trace %q\n", rp.Name())
	}
	var (
		writes, deps uint64
		pages        = map[uint64]bool{}
		gaps         uint64
	)
	for i := uint64(0); i < n; i++ {
		a := rp.Next()
		if err := rp.Err(); err != nil {
			return err
		}
		if csv {
			fmt.Printf("%#x,%#x,%d,%t,%t\n", a.PC, uint64(a.Addr), a.Gap, a.Write, a.Dependent)
			continue
		}
		if i < 10 {
			fmt.Printf("  %3d: pc=%#x addr=%#x gap=%d write=%t dep=%t\n",
				i, a.PC, uint64(a.Addr), a.Gap, a.Write, a.Dependent)
		}
		if a.Write {
			writes++
		}
		if a.Dependent {
			deps++
		}
		pages[uint64(a.Addr.Page())] = true
		gaps += uint64(a.Gap)
	}
	if !csv {
		fmt.Printf("summary over %d records: %d distinct pages, %.1f%% writes, %.1f%% dependent, mean gap %.2f\n",
			n, len(pages), 100*float64(writes)/float64(n), 100*float64(deps)/float64(n),
			float64(gaps)/float64(n))
	}
	return nil
}

// summarizeChunks prints a DPBF v2 file's chunk index: per-chunk record
// counts and compressed payload sizes against the raw columnar equivalent
// (the 21 bytes/record a v1 dump would spend), and the overall compression
// ratio. It costs O(chunks) — the index comes from the footer, payloads
// are never inflated. Long indexes elide the middle chunks.
func summarizeChunks(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	ct, err := trace.OpenChunked(f, info.Size())
	if err != nil {
		return err
	}
	const recBytes = 21 // 8 PC + 8 VA + 4 gap + 1 flags per record, the v1 column cost
	ratio := func(raw, comp uint64) float64 {
		if comp == 0 {
			return 0
		}
		return float64(raw) / float64(comp)
	}
	chunks := ct.Chunks()
	fmt.Printf("dpbf v2: %d chunks, file %d bytes\n", chunks, info.Size())
	const headTail = 16 // chunks shown before eliding + the final chunk
	var comp, raw uint64
	for i := 0; i < chunks; i++ {
		encLen, rawN := ct.ChunkInfo(i)
		comp += uint64(encLen)
		raw += uint64(rawN) * recBytes
		if chunks > headTail+2 && i == headTail {
			fmt.Printf("  ... %d chunks elided ...\n", chunks-headTail-1)
		}
		if chunks <= headTail+2 || i < headTail || i == chunks-1 {
			cr := uint64(rawN) * recBytes
			fmt.Printf("  chunk %4d: %6d records, %7d bytes compressed, %8d raw (%.2fx)\n",
				i, rawN, encLen, cr, ratio(cr, uint64(encLen)))
		}
	}
	fmt.Printf("  payload total: %d bytes compressed, %d raw columnar, ratio %.2fx\n",
		comp, raw, ratio(raw, comp))
	return nil
}

// streamShift groups PCs into instruction streams for the summary: the
// synthetic workloads lay each logical stream's PCs in its own 16 KiB
// region, so PC>>14 recovers the stream identity (and gives a coarse but
// stable grouping for externally recorded traces too).
const streamShift = 14

// summarize reads an entire trace file — any format — and prints
// per-stream access counts, the read/write split and the unique-VPN
// footprint. DPBF v2 files additionally get their chunk index reported
// first; a v2 file whose index disagrees with its footer is rejected with
// trace.ErrChunkIndexMismatch rather than summarized from whichever copy
// happens to parse.
func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var pre [6]byte
	if _, err := f.ReadAt(pre[:], 0); err == nil &&
		string(pre[:4]) == "DPBF" && binary.LittleEndian.Uint16(pre[4:]) == 2 {
		if err := summarizeChunks(f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	b, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}
	n := b.Len()
	fmt.Printf("trace %q: %d accesses\n", b.Name(), n)
	if n == 0 {
		return nil
	}

	var writes uint64
	streams := map[uint64]uint64{}
	vpns := map[uint64]struct{}{}
	for i := uint64(0); i < n; i++ {
		a := b.At(i)
		if a.Write {
			writes++
		}
		streams[a.PC>>streamShift]++
		vpns[uint64(a.Addr.Page())] = struct{}{}
	}

	reads := n - writes
	ratio := "inf"
	if writes > 0 {
		ratio = fmt.Sprintf("%.2f", float64(reads)/float64(writes))
	}
	fmt.Printf("reads         %d (%.1f%%)\n", reads, 100*float64(reads)/float64(n))
	fmt.Printf("writes        %d (%.1f%%)\n", writes, 100*float64(writes)/float64(n))
	fmt.Printf("r/w ratio     %s\n", ratio)
	fmt.Printf("unique VPNs   %d (%.1f MB footprint)\n", len(vpns),
		float64(len(vpns))*4096/(1<<20))

	ids := make([]uint64, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if streams[ids[i]] != streams[ids[j]] {
			return streams[ids[i]] > streams[ids[j]]
		}
		return ids[i] < ids[j]
	})
	fmt.Printf("streams       %d (PC >> %d)\n", len(ids), streamShift)
	for _, id := range ids {
		c := streams[id]
		fmt.Printf("  stream %#6x: %9d accesses (%5.1f%%)\n",
			id, c, 100*float64(c)/float64(n))
	}
	return nil
}
