// Command tracedump records synthetic workload traces to the repository's
// binary trace format and inspects existing trace files. Recorded traces
// can be replayed through the simulator (deadpred.Replayer / the -replay
// flag of deadsim-style tools) or exported as CSV for external analysis.
//
// Usage:
//
//	tracedump -workload cc -n 1000000 -o cc.dptr     # record
//	tracedump -dump cc.dptr -n 20                    # peek at records
//	tracedump -dump cc.dptr -csv > cc.csv            # export CSV
//	tracedump -summary cc.dptr                       # whole-file statistics
//
// -summary accepts both trace formats (DPTR record streams and DPBF buffer
// dumps, distinguished by magic) and reports per-PC-stream access counts,
// the read/write ratio and the unique-VPN footprint over the entire file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "", "Table II workload to record")
		n        = flag.Uint64("n", 1_000_000, "records to record/dump")
		out      = flag.String("o", "", "output trace file (record mode)")
		dump     = flag.String("dump", "", "trace file to inspect")
		csv      = flag.Bool("csv", false, "dump as CSV instead of a summary")
		summary  = flag.String("summary", "", "trace file (DPTR or DPBF) to summarize whole-file")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel a long recording; the partially written file
	// stays on disk (its header names it) and the command exits nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	switch {
	case *workload != "" && *out != "":
		return record(ctx, *workload, *out, *n, *seed)
	case *summary != "":
		return summarize(*summary)
	case *dump != "":
		return inspect(*dump, *n, *csv)
	default:
		flag.Usage()
		return fmt.Errorf("need either -workload with -o, -dump, or -summary")
	}
}

func record(ctx context.Context, name, path string, n, seed uint64) error {
	w, err := trace.ByName(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".dpbf") {
		// Struct-of-arrays buffer dump: the runner's materialized cache
		// format, denser than the DPTR record stream.
		var b *trace.Buffer
		if b, err = trace.MaterializeContext(ctx, w.New(seed), n); err == nil {
			_, err = b.WriteTo(f)
		}
	} else {
		err = trace.RecordContext(ctx, f, w.New(seed), n)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of %s to %s (%d bytes)\n", n, name, path, info.Size())
	return nil
}

func inspect(path string, n uint64, csv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.NewReplayer(f, false)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("pc,vaddr,gap,write,dependent")
	} else {
		fmt.Printf("trace %q\n", rp.Name())
	}
	var (
		writes, deps uint64
		pages        = map[uint64]bool{}
		gaps         uint64
	)
	for i := uint64(0); i < n; i++ {
		a := rp.Next()
		if err := rp.Err(); err != nil {
			return err
		}
		if csv {
			fmt.Printf("%#x,%#x,%d,%t,%t\n", a.PC, uint64(a.Addr), a.Gap, a.Write, a.Dependent)
			continue
		}
		if i < 10 {
			fmt.Printf("  %3d: pc=%#x addr=%#x gap=%d write=%t dep=%t\n",
				i, a.PC, uint64(a.Addr), a.Gap, a.Write, a.Dependent)
		}
		if a.Write {
			writes++
		}
		if a.Dependent {
			deps++
		}
		pages[uint64(a.Addr.Page())] = true
		gaps += uint64(a.Gap)
	}
	if !csv {
		fmt.Printf("summary over %d records: %d distinct pages, %.1f%% writes, %.1f%% dependent, mean gap %.2f\n",
			n, len(pages), 100*float64(writes)/float64(n), 100*float64(deps)/float64(n),
			float64(gaps)/float64(n))
	}
	return nil
}

// streamShift groups PCs into instruction streams for the summary: the
// synthetic workloads lay each logical stream's PCs in its own 16 KiB
// region, so PC>>14 recovers the stream identity (and gives a coarse but
// stable grouping for externally recorded traces too).
const streamShift = 14

// summarize reads an entire trace file — either format — and prints
// per-stream access counts, the read/write split and the unique-VPN
// footprint.
func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	b, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}
	n := b.Len()
	fmt.Printf("trace %q: %d accesses\n", b.Name(), n)
	if n == 0 {
		return nil
	}

	var writes uint64
	streams := map[uint64]uint64{}
	vpns := map[uint64]struct{}{}
	for i := uint64(0); i < n; i++ {
		a := b.At(i)
		if a.Write {
			writes++
		}
		streams[a.PC>>streamShift]++
		vpns[uint64(a.Addr.Page())] = struct{}{}
	}

	reads := n - writes
	ratio := "inf"
	if writes > 0 {
		ratio = fmt.Sprintf("%.2f", float64(reads)/float64(writes))
	}
	fmt.Printf("reads         %d (%.1f%%)\n", reads, 100*float64(reads)/float64(n))
	fmt.Printf("writes        %d (%.1f%%)\n", writes, 100*float64(writes)/float64(n))
	fmt.Printf("r/w ratio     %s\n", ratio)
	fmt.Printf("unique VPNs   %d (%.1f MB footprint)\n", len(vpns),
		float64(len(vpns))*4096/(1<<20))

	ids := make([]uint64, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if streams[ids[i]] != streams[ids[j]] {
			return streams[ids[i]] > streams[ids[j]]
		}
		return ids[i] < ids[j]
	})
	fmt.Printf("streams       %d (PC >> %d)\n", len(ids), streamShift)
	for _, id := range ids {
		c := streams[id]
		fmt.Printf("  stream %#6x: %9d accesses (%5.1f%%)\n",
			id, c, 100*float64(c)/float64(n))
	}
	return nil
}
