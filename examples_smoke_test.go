package deadpred_test

import (
	"os/exec"
	"testing"
)

// TestExamplesSmoke runs every example program at tiny trace lengths so a
// refactor that breaks the public API surface the examples exercise fails
// `go test ./...` instead of rotting silently. The test's working
// directory is the module root (the package directory), which is exactly
// what `go run ./examples/...` needs.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds five binaries; skipped in -short")
	}
	cases := []struct {
		name string
		args []string
	}{
		{"quickstart", []string{"run", "./examples/quickstart", "-warmup", "2000", "-n", "8000"}},
		{"customtrace", []string{"run", "./examples/customtrace", "-warmup", "2000", "-n", "8000"}},
		{"replaytrace", []string{"run", "./examples/replaytrace", "-n", "8000"}},
		{"characterize", []string{"run", "./examples/characterize", "-warmup", "2000", "-n", "8000", "pr"}},
		{"graphsweep", []string{"run", "./examples/graphsweep", "-warmup", "2000", "-n", "8000"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go %v: %v\n%s", tc.args, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go %v: ran but produced no output", tc.args)
			}
		})
	}
}
