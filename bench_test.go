package deadpred

// One benchmark per paper artifact (DESIGN.md §5): `go test -bench=.`
// regenerates every table and figure at reduced trace lengths and reports
// the headline number of each as a custom metric. For full-fidelity
// numbers use cmd/paperexp.

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/obs"
)

// benchParams trades fidelity for benchmark runtime; the shapes survive,
// the absolute numbers are noisier than cmd/paperexp's defaults.
func benchParams() exp.Params {
	return exp.Params{Warmup: 20_000, Measure: 60_000, Seed: 1, SampleEvery: 5_000}
}

// benchSeries runs one experiment per iteration and reports the mean of
// the given summary column as the benchmark's headline metric.
func benchSeries(b *testing.B, fn func(*exp.Runner) (exp.Series, error), col int, metric string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		s, err := fn(r)
		if err != nil {
			b.Fatal(err)
		}
		last = s.Summary[col]
	}
	b.ReportMetric(last, metric)
}

func BenchmarkFig1DeadPagesSampled(b *testing.B) {
	benchSeries(b, exp.Figure1, 0, "mean-%dead-LLT")
}

func BenchmarkFig2DeadPageClassification(b *testing.B) {
	benchSeries(b, exp.Figure2, 1, "mean-%DOA-evictions")
}

func BenchmarkFig3DeadBlocksSampled(b *testing.B) {
	benchSeries(b, exp.Figure3, 0, "mean-%dead-LLC")
}

func BenchmarkFig4DeadBlockClassification(b *testing.B) {
	benchSeries(b, exp.Figure4, 1, "mean-%DOA-evictions")
}

func BenchmarkTable3DOACorrelation(b *testing.B) {
	benchSeries(b, exp.Table3, 0, "mean-%DOA-on-DOA-page")
}

func BenchmarkFig9TLBPredictorIPC(b *testing.B) {
	benchSeries(b, exp.Figure9, 2, "dpPred-geomean-IPC")
}

func BenchmarkTable4LLTMPKI(b *testing.B) {
	benchSeries(b, exp.Table4, 2, "dpPred-mean-MPKI-reduction-%")
}

func BenchmarkFig10LLCPredictorIPC(b *testing.B) {
	benchSeries(b, exp.Figure10, 4, "proposal-geomean-IPC")
}

func BenchmarkTable5LLCMPKI(b *testing.B) {
	benchSeries(b, exp.Table5, 2, "cbPred-mean-MPKI-reduction-%")
}

func BenchmarkTable6DPAccuracy(b *testing.B) {
	benchSeries(b, exp.Table6, 0, "dpPred-mean-accuracy-%")
}

func BenchmarkTable7CBAccuracy(b *testing.B) {
	benchSeries(b, exp.Table7, 0, "cbPred-mean-accuracy-%")
}

func BenchmarkFig11aLLTSize(b *testing.B) {
	benchSeries(b, exp.Figure11a, 1, "dpPred-1024e-geomean-IPC")
}

func BenchmarkFig11bPHISTConfig(b *testing.B) {
	benchSeries(b, exp.Figure11b, 1, "default-pHIST-geomean-IPC")
}

func BenchmarkFig11cShadowSize(b *testing.B) {
	benchSeries(b, exp.Figure11c, 0, "2-entry-shadow-geomean-IPC")
}

func BenchmarkFig11dPFQSize(b *testing.B) {
	benchSeries(b, exp.Figure11d, 0, "8-entry-PFQ-geomean-IPC")
}

func BenchmarkFig11eLLCSize(b *testing.B) {
	benchSeries(b, exp.Figure11e, 0, "2MB-LLC-geomean-IPC")
}

func BenchmarkFig11fSRRIP(b *testing.B) {
	benchSeries(b, exp.Figure11f, 3, "SRRIP+proposal-geomean-IPC")
}

func BenchmarkExtensionPrefetch(b *testing.B) {
	benchSeries(b, exp.ExtensionPrefetch, 2, "dpPred+prefetch-geomean-IPC")
}

func BenchmarkExtensionDIP(b *testing.B) {
	benchSeries(b, exp.ExtensionDIP, 2, "DIP+dpPred-geomean-IPC")
}

func BenchmarkAblationThreshold(b *testing.B) {
	benchSeries(b, exp.AblationThreshold, 2, "threshold6-geomean-IPC")
}

func BenchmarkAblationCounterBits(b *testing.B) {
	benchSeries(b, exp.AblationCounterBits, 1, "3bit-geomean-IPC")
}

func BenchmarkStorageOverhead(b *testing.B) {
	var kb float64
	for i := 0; i < b.N; i++ {
		rep, err := exp.StorageOverheads()
		if err != nil {
			b.Fatal(err)
		}
		kb = rep.Rows[2].KB() // dpPred+cbPred total
	}
	b.ReportMetric(kb, "proposal-KB")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (accesses per
// second through the full machine), the figure of merit for the simulator
// substrate itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := DefaultConfig()
	sys, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := AttachPaperPredictors(sys); err != nil {
		b.Fatal(err)
	}
	w, err := WorkloadByName("cc")
	if err != nil {
		b.Fatal(err)
	}
	g := w.New(1)
	b.ResetTimer()
	if err := sys.Run(g, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatorThroughputTraced is the same run with full
// observability attached (ring-buffer tracing, metrics, interval
// sampling); the delta against BenchmarkSimulatorThroughput is the
// telemetry overhead when enabled.
func BenchmarkSimulatorThroughputTraced(b *testing.B) {
	cfg := DefaultConfig()
	sys, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := AttachPaperPredictors(sys); err != nil {
		b.Fatal(err)
	}
	o := &Observer{
		Tracer:   NewTracer(0, obs.NullSink{}),
		Metrics:  NewMetricsRegistry(),
		Interval: NewIntervalRecorder(50_000),
	}
	o.BeginRun("cc", "bench")
	sys.AttachObserver(o)
	w, err := WorkloadByName("cc")
	if err != nil {
		b.Fatal(err)
	}
	g := w.New(1)
	b.ResetTimer()
	if err := sys.Run(g, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}
